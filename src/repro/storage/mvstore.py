"""Multi-versioned key-value store with block snapshots.

Block snapshots are the deterministic read source of optimistic DCC
(Table 2c): the state after block *b* is identical on every replica, so a
transaction in block *b+1* (or *b+2* under inter-block parallelism) that
reads "the snapshot of block *b*" reads the same values everywhere,
regardless of message delays.

Versions are tagged ``(block_id, seq)`` where ``seq`` is the apply order
within the block — the sub-block component is what SOV-style validation
(Fabric) compares read versions against.

Hot-path notes:

- :meth:`MVStore.load` builds the sorted key directory with one sort
  (O(n log n)) instead of a per-key ``insort`` (O(n²) on large workload
  populates); :meth:`MVStore.apply_block` batches new keys the same way.
- :meth:`SnapshotView.scan` bisects the key directory once per boundary
  and walks the slice with a chain-tail fast path, falling back to the
  per-chain binary search only when the newest version is not yet visible
  at the snapshot.
- :meth:`MVStore.materialize` / :meth:`MVStore.materialize_at` stream the
  version chains in one pass (chain-tail fast path, no per-key
  ``get_latest``); the per-key probe loops are retained behind
  ``indexed=False`` as the differential reference.
- :meth:`MVStore.gc` walks only watermarked chains (keys written more than
  once since their last collection); the seed's every-chain walk is
  retained behind ``indexed=False``.
- :meth:`MVStore.state_hash` is incremental: each live ``(key, value)``
  entry contributes a 256-bit SHA digest combined into a running
  accumulator by addition mod 2²⁵⁶ (Bellare–Micciancio's AdHash — order
  independent without XOR's linear malleability), and only keys written
  since the last call are re-hashed. :meth:`MVStore.state_hash_full`
  recomputes from scratch and is the differential-testing reference.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, insort


class _Tombstone:
    """Sentinel marking a deleted key inside a version chain.

    Compared by identity everywhere, so copying must preserve the
    singleton (checkpoints deep-copy write lists that contain it).
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<TOMBSTONE>"

    def __copy__(self) -> "_Tombstone":
        return self

    def __deepcopy__(self, memo) -> "_Tombstone":
        return self


TOMBSTONE = _Tombstone()

#: ``seq`` offset for ownership-migration loads: shipped key versions are
#: installed *into* the boundary block ``H-1`` after the fact, and this
#: base keeps them sorted after every real write of that block in
#: :meth:`MVStore.writes_in_block` (blocks never carry 2**20 real writes).
MIGRATION_SEQ_BASE = 1 << 20

Version = tuple[int, int]


def _visible_at(
    chain: list[tuple[Version, object]], block_id: int
) -> tuple[Version, object] | None:
    """The last chain entry whose block <= ``block_id``, or ``None``.

    The snapshot-visibility search, shared by everything except
    :meth:`SnapshotView.get` — the per-read hot path keeps its own inlined
    copy to stay free of a call frame; keep the two searches in lockstep.
    """
    lo, hi = 0, len(chain)
    while lo < hi:
        mid = (lo + hi) // 2
        if chain[mid][0][0] <= block_id:
            lo = mid + 1
        else:
            hi = mid
    if lo == 0:
        return None
    return chain[lo - 1]


def canonical(value: object) -> str:
    """A stable textual form of a stored value, for state hashing."""
    if isinstance(value, dict):
        inner = ",".join(f"{k}={canonical(v)}" for k, v in sorted(value.items()))
        return "{" + inner + "}"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


#: accumulator modulus for the additive (AdHash-style) state hash
_HASH_MOD = 1 << 256


def combine_state_hashes(hashes) -> str:
    """Fold per-store state hashes into the hash of their union.

    Valid only for stores over *disjoint* keyspaces (the sharded layout):
    each store's hash is the sum of its live entry digests, so the union's
    hash is the modular sum — a single-store deployment's combined hash
    equals its own.
    """
    return f"{sum(int(h, 16) for h in hashes) % _HASH_MOD:064x}"


def _entry_digest(key: object, value: object) -> int:
    """The 256-bit contribution of one live entry to the state hash."""
    payload = f"{key!r}->{canonical(value)};".encode()
    return int.from_bytes(hashlib.sha256(payload).digest(), "big")


class SnapshotView:
    """A read-only view of the store as of the end of ``block_id``."""

    def __init__(self, store: "MVStore", block_id: int) -> None:
        self._store = store
        self.block_id = block_id

    def get(self, key: object) -> tuple[object | None, Version | None]:
        """Return ``(value, version)`` as of this snapshot.

        Missing and deleted keys both return ``(None, None)`` /
        ``(None, version)`` respectively; callers treat ``None`` as absent.
        """
        chain = self._store._versions.get(key)
        if not chain:
            return None, None
        # Find the last version whose block_id <= snapshot block.
        lo, hi = 0, len(chain)
        while lo < hi:
            mid = (lo + hi) // 2
            if chain[mid][0][0] <= self.block_id:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return None, None
        version, value = chain[lo - 1]
        if value is TOMBSTONE:
            return None, version
        return value, version

    def get_entry(self, key: object) -> tuple[object, Version | None]:
        """The raw visible chain entry: ``(value, version)``.

        Unlike :meth:`get`, the value is *not* normalized — a TOMBSTONE
        surfaces as-is and a stored ``None`` keeps its version, so callers
        that must distinguish "deleted" from "a live entry whose value is
        None" (checkpoint materialization) can. ``(None, None)`` means the
        key has no version visible at this snapshot at all.
        """
        chain = self._store._versions.get(key)
        if not chain:
            return None, None
        entry = _visible_at(chain, self.block_id)
        if entry is None:
            return None, None
        version, value = entry
        return value, version

    def scan(self, start: object, end: object):
        """Yield ``(key, value)`` for live keys with start <= key < end.

        One bisect per range boundary instead of a per-key comparison, and
        a chain-tail fast path: when a key's newest version is already
        visible at this snapshot (the overwhelmingly common case) the
        per-key binary search is skipped entirely.
        """
        keys = self._store._sorted_keys
        versions = self._store._versions
        block_id = self.block_id
        lo = bisect_left(keys, start)
        hi = bisect_left(keys, end)
        for i in range(lo, hi):
            key = keys[i]
            chain = versions[key]
            version, value = chain[-1]
            if version[0] > block_id:
                entry = _visible_at(chain, block_id)
                if entry is None:
                    continue  # key born after this snapshot
                version, value = entry
            if value is not TOMBSTONE and value is not None:
                yield key, value


class MVStore:
    """Append-only multi-versioned store; one version batch per block."""

    def __init__(self) -> None:
        #: key -> list of ((block_id, seq), value), in commit order.
        self._versions: dict[object, list[tuple[Version, object]]] = {}
        self._sorted_keys: list[object] = []
        self.last_committed_block = -1
        #: incremental state-hash accumulator (sum of live entry digests
        #: mod 2**256 — additive so stale contributions can be retracted)
        self._live_digest = 0
        #: key -> digest currently folded into the accumulator
        self._key_digest: dict[object, int] = {}
        #: keys written since the accumulator was last brought up to date
        self._stale_keys: set[object] = set()
        #: gc watermark: keys whose chains grew past one version since the
        #: last collection — the only chains a horizon move can shorten.
        #: Bulk loads of fresh keys never enter (chain length one), so a
        #: million-key populate costs gc nothing.
        self._gc_pending: set[object] = set()
        #: per-block key watermark: block_id -> keys that block wrote, so
        #: :meth:`writes_in_block` walks only those chains instead of the
        #: whole store. Grows like the block log (one entry per installed
        #: write), which recovery retains anyway.
        self._block_keys: dict[int, list[object]] = {}

    def __contains__(self, key: object) -> bool:
        value, _ = self.get_latest(key)
        return value is not None

    def __len__(self) -> int:
        return sum(
            1
            for chain in self._versions.values()
            if chain[-1][1] is not TOMBSTONE and chain[-1][1] is not None
        )

    def keys(self) -> list[object]:
        return [
            key
            for key in self._sorted_keys
            if (latest := self._versions[key][-1][1]) is not TOMBSTONE
            and latest is not None
        ]

    def load(
        self,
        items: dict[object, object],
        block_id: int = -1,
        seq_start: int = 0,
    ) -> None:
        """Bulk-load initial state as a pseudo-block (no snapshot bump).

        ``seq_start`` offsets the within-block ``seq`` tags: ownership
        migrations load shipped versions *into an already-applied block*
        (``MIGRATION_SEQ_BASE``), and they must sort after every real
        write of that block in :meth:`writes_in_block` or replay would
        interleave migration deltas before the block's own writes.
        """
        versions = self._versions
        if not versions:
            # Common case — populating a fresh store: build the chain map
            # in one comprehension and the key directory with one sort.
            self._versions = {
                key: [((block_id, seq), value)]
                for seq, (key, value) in enumerate(items.items(), start=seq_start)
            }
            self._sorted_keys = sorted(self._versions)
            self._stale_keys.update(self._versions)
            self._block_keys.setdefault(block_id, []).extend(items)
            return
        new_keys = []
        for seq, (key, value) in enumerate(items.items(), start=seq_start):
            chain = versions.get(key)
            if chain is None:
                versions[key] = [((block_id, seq), value)]
                new_keys.append(key)
            else:
                if chain[-1][0][0] > block_id:
                    # Appending an older version would break the
                    # block-sorted chain invariant that every snapshot
                    # lookup (get *and* scan) binary-searches on.
                    raise ValueError(
                        f"load(block_id={block_id}) after block "
                        f"{chain[-1][0][0]} would break {key!r}'s version order"
                    )
                chain.append(((block_id, seq), value))
                self._gc_pending.add(key)
        self._stale_keys.update(items)
        self._block_keys.setdefault(block_id, []).extend(items)
        self._merge_new_keys(new_keys)

    def get_latest(self, key: object) -> tuple[object | None, Version | None]:
        chain = self._versions.get(key)
        if not chain:
            return None, None
        version, value = chain[-1]
        if value is TOMBSTONE:
            return None, version
        return value, version

    def snapshot(self, block_id: int) -> SnapshotView:
        return SnapshotView(self, block_id)

    def latest_snapshot(self) -> SnapshotView:
        return SnapshotView(self, self.last_committed_block)

    def apply_block(self, block_id: int, writes: list[tuple[object, object]]) -> None:
        """Install a block's writes, in apply order, as one version batch.

        ``writes`` is an ordered list so that within-block apply order
        (which SOV validation observes via ``seq``) is explicit.
        """
        if block_id <= self.last_committed_block:
            raise ValueError(
                f"block {block_id} is not after last committed {self.last_committed_block}"
            )
        versions = self._versions
        stale = self._stale_keys
        pending = self._gc_pending
        block_keys = self._block_keys.setdefault(block_id, [])
        new_keys = []
        for seq, (key, value) in enumerate(writes):
            chain = versions.get(key)
            if chain is None:
                versions[key] = [((block_id, seq), value)]
                new_keys.append(key)
            else:
                chain.append(((block_id, seq), value))
                pending.add(key)
            stale.add(key)
            block_keys.append(key)
        self._merge_new_keys(new_keys)
        self.last_committed_block = block_id

    def _merge_new_keys(self, new_keys: list[object]) -> None:
        """Fold freshly-created keys into the sorted directory: one sort
        per batch instead of one O(n) ``insort`` per key."""
        if not new_keys:
            return
        if self._sorted_keys:
            self._sorted_keys.extend(new_keys)
            self._sorted_keys.sort()
        else:
            new_keys.sort()
            self._sorted_keys = new_keys

    def _append(self, key: object, version: Version, value: object) -> None:
        """Single-key append (kept for ad-hoc use; block paths batch)."""
        chain = self._versions.get(key)
        if chain is None:
            self._versions[key] = [(version, value)]
            insort(self._sorted_keys, key)
        else:
            chain.append((version, value))
            self._gc_pending.add(key)
        self._stale_keys.add(key)
        self._block_keys.setdefault(version[0], []).append(key)

    @staticmethod
    def _gc_chain(chain: list, keep_after_block: int) -> int:
        """Drop ``chain``'s versions older than the horizon; count dropped."""
        cut = 0
        for i, (version, _value) in enumerate(chain):
            if version[0] <= keep_after_block:
                cut = i
            else:
                break
        if cut > 0:
            del chain[:cut]
        return cut

    def gc(self, keep_after_block: int, indexed: bool = True) -> int:
        """Drop versions strictly older than the latest one at or before
        ``keep_after_block``. Returns the number of versions dropped.

        ``indexed=True`` (default) walks only the watermarked chains —
        keys written more than once since their last collection — instead
        of every chain in the store: a single-version chain can never lose
        a version to any horizon, and after a collection a key leaves the
        watermark set as soon as its chain is back to one version.
        ``indexed=False`` retains the seed's full walk as the
        differential-testing reference; both drop the identical versions.
        """
        dropped = 0
        if indexed:
            pending = self._gc_pending
            for key in list(pending):
                chain = self._versions[key]
                dropped += self._gc_chain(chain, keep_after_block)
                if len(chain) == 1:
                    pending.discard(key)
            return dropped
        for key, chain in self._versions.items():
            dropped += self._gc_chain(chain, keep_after_block)
            if len(chain) == 1:
                self._gc_pending.discard(key)
        return dropped

    def state_hash(self) -> str:
        """Digest of the latest live state — replica-consistency fingerprint.

        Incremental: only keys written since the previous call are
        re-hashed; each live entry's digest is folded into a running
        accumulator by addition mod 2**256 (AdHash-style — commutative,
        so the result depends only on the live content, never on write
        history, while avoiding the linear malleability of an XOR
        combiner that a Byzantine replica could exploit).
        """
        if self._stale_keys:
            digest = self._live_digest
            key_digest = self._key_digest
            versions = self._versions
            for key in self._stale_keys:
                chain = versions.get(key)
                value = chain[-1][1] if chain else None
                if value is TOMBSTONE or value is None:
                    new = 0
                else:
                    new = _entry_digest(key, value)
                old = key_digest.get(key, 0)
                if new != old:
                    digest = (digest - old + new) % _HASH_MOD
                    if new:
                        key_digest[key] = new
                    else:
                        del key_digest[key]
            self._live_digest = digest
            self._stale_keys.clear()
        return f"{self._live_digest:064x}"

    def state_hash_full(self) -> str:
        """Recompute :meth:`state_hash` from scratch (reference path for
        differential tests; never consults the incremental accumulator)."""
        digest = 0
        for key, chain in self._versions.items():
            value = chain[-1][1]
            if value is not TOMBSTONE and value is not None:
                digest = (digest + _entry_digest(key, value)) % _HASH_MOD
        return f"{digest:064x}"

    def _latest_entry(self, key: object) -> tuple[object, Version | None]:
        """Raw newest chain entry (value may be TOMBSTONE or a live None)."""
        chain = self._versions.get(key)
        if not chain:
            return None, None
        version, value = chain[-1]
        return value, version

    def materialize(self, indexed: bool = True) -> dict[object, object]:
        """The latest live state as a plain dict (checkpointing).

        "Live" means *not deleted*: only TOMBSTONEs are dropped. A stored
        ``None`` is a real entry — its version participates in SOV-style
        version checks, so a checkpoint that silently dropped it would make
        a recovered replica diverge from one that never crashed.
        ``indexed=False`` retains the per-key probe loop as the
        differential-testing reference.
        """
        if not indexed:
            state: dict[object, object] = {}
            for key in self._sorted_keys:
                value, version = self._latest_entry(key)
                if version is not None and value is not TOMBSTONE:
                    state[key] = value
            return state
        # One pass over the chain tails — no per-key method dispatch.
        versions = self._versions
        return {
            key: value
            for key in self._sorted_keys
            if (value := versions[key][-1][1]) is not TOMBSTONE
        }

    def materialize_at(self, block_id: int, indexed: bool = True) -> dict[object, object]:
        """The live state as of the end of ``block_id``.

        Checkpoints under inter-block parallelism must capture the previous
        block's snapshot too, because the first replayed block simulates
        against it (snapshot lag 2). Same TOMBSTONE-vs-stored-``None``
        semantics as :meth:`materialize`.
        """
        if not indexed:
            view = self.snapshot(block_id)
            state: dict[object, object] = {}
            for key in self._sorted_keys:
                value, version = view.get_entry(key)
                if version is not None and value is not TOMBSTONE:
                    state[key] = value
            return state
        # One-pass stream over the version chains with the same chain-tail
        # fast path as SnapshotView.scan: the per-key binary search runs
        # only when the newest version is not yet visible at the snapshot.
        versions = self._versions
        state: dict[object, object] = {}
        for key in self._sorted_keys:
            chain = versions[key]
            version, value = chain[-1]
            if version[0] > block_id:
                entry = _visible_at(chain, block_id)
                if entry is None:
                    continue  # key born after this snapshot
                version, value = entry
            if value is not TOMBSTONE:
                state[key] = value
        return state

    def writes_in_block(
        self, block_id: int, indexed: bool = True
    ) -> list[tuple[object, object]]:
        """The writes ``block_id`` installed, in their original apply order.

        TOMBSTONEs included: this is the exact ordered list the block
        handed to :meth:`apply_block` (every version the block installed,
        even if a caller wrote one key several times), so replaying it
        through :meth:`apply_block` regenerates the block's version batch
        with identical ``(block_id, seq)`` tags. Checkpoint recovery relies
        on that exactness — a value diff of two materialized snapshots
        cannot see a key rewritten with an unchanged value, and would leave
        the recovered replica's version behind the one SOV-style checks
        observe on an uncrashed replica.

        ``indexed=True`` (default) walks only the block's watermarked
        chains (``_block_keys``, recorded at apply time like the gc
        watermark) — O(block writes), never O(keyspace). ``indexed=False``
        retains the seed's every-chain walk as the differential reference;
        both return the identical list.
        """
        writes: list[tuple[int, object, object]] = []
        if indexed:
            # Dedup per call: a key written twice in the block appears
            # twice in the watermark, but its chain holds both versions.
            seen: set[object] = set()
            chains = (
                (key, self._versions[key])
                for key in self._block_keys.get(block_id, ())
                if not (key in seen or seen.add(key))
            )
        else:
            chains = self._versions.items()
        for key, chain in chains:
            for version, value in reversed(chain):
                if version[0] == block_id:
                    writes.append((version[1], key, value))
                elif version[0] < block_id:
                    break
        writes.sort(key=lambda entry: entry[0])
        return [(key, value) for _seq, key, value in writes]
