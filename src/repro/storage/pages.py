"""Fixed-capacity slotted pages.

Records are keyed logically; the heap file maps keys to (page, slot) RIDs.
Pages track only occupancy — record payloads live in the MVStore — because
the simulation needs page *identity* (for buffer-pool behaviour), not byte
layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Number of records per page. With the paper's 10K-key YCSB/Smallbank
#: tables this yields ~160 pages, so buffer-pool behaviour (hot pages stay
#: resident, cold scans evict) is visible at benchmark scale.
PAGE_RECORD_CAPACITY = 64


@dataclass
class Page:
    """A heap page: a set of occupied slots."""

    page_id: int
    capacity: int = PAGE_RECORD_CAPACITY
    slots: dict[int, object] = field(default_factory=dict)

    @property
    def is_full(self) -> bool:
        return len(self.slots) >= self.capacity

    def allocate_slot(self, key: object) -> int:
        """Place ``key`` in the first free slot; returns the slot number."""
        if self.is_full:
            raise ValueError(f"page {self.page_id} is full")
        for slot in range(self.capacity):
            if slot not in self.slots:
                self.slots[slot] = key
                return slot
        raise AssertionError("is_full lied")  # pragma: no cover

    def free_slot(self, slot: int) -> None:
        self.slots.pop(slot, None)
