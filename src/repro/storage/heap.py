"""Heap file: maps logical keys to pages and meters access costs.

Each key lives at a (page, slot) RID. Accessing a key costs an index
probe plus a buffer-pool access (which may become a disk read and an
eviction write-back). The heap is shared by all versions of a key — the
MVStore's version chains are an in-page detail the simulation does not
separate.
"""

from __future__ import annotations

from repro.sim.costs import CostModel
from repro.storage.bufferpool import BufferPool
from repro.storage.pages import PAGE_RECORD_CAPACITY, Page


class HeapFile:
    """An append-allocated collection of slotted pages with a key directory."""

    def __init__(
        self,
        buffer_pool: BufferPool,
        costs: CostModel,
        records_per_page: int = PAGE_RECORD_CAPACITY,
    ) -> None:
        self._pool = buffer_pool
        self._costs = costs
        self._records_per_page = records_per_page
        self._pages: list[Page] = []
        self._directory: dict[object, tuple[int, int]] = {}

    def __contains__(self, key: object) -> bool:
        return key in self._directory

    def __len__(self) -> int:
        return len(self._directory)

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def insert(self, key: object) -> float:
        """Allocate a RID for ``key``; returns the simulated cost in us."""
        if key in self._directory:
            raise KeyError(f"duplicate key {key!r}")
        if not self._pages or self._pages[-1].is_full:
            self._pages.append(Page(page_id=len(self._pages), capacity=self._records_per_page))
        page = self._pages[-1]
        slot = page.allocate_slot(key)
        self._directory[key] = (page.page_id, slot)
        cost = self._costs.index_lookup_us
        cost += self._pool.access(page.page_id, dirty=True)
        return cost

    def access(self, key: object, write: bool = False) -> float:
        """Touch the page holding ``key``; returns the cost in us.

        Unknown keys still cost an index probe (a miss in the index) —
        callers decide whether that is an error.
        """
        cost = self._costs.index_lookup_us
        rid = self._directory.get(key)
        if rid is None:
            return cost
        page_id, _slot = rid
        cost += self._costs.latch_us
        cost += self._pool.access(page_id, dirty=write)
        return cost

    def delete(self, key: object) -> float:
        """Free the RID of ``key``; returns the cost in us."""
        rid = self._directory.pop(key, None)
        cost = self._costs.index_lookup_us
        if rid is None:
            return cost
        page_id, slot = rid
        self._pages[page_id].free_slot(slot)
        cost += self._pool.access(page_id, dirty=True)
        return cost

    def page_of(self, key: object) -> int | None:
        rid = self._directory.get(key)
        return rid[0] if rid else None
