"""Simulated block device.

The device does no data movement — pages live in Python objects — it only
*meters* accesses: each read/write/fsync returns its simulated latency and
bumps counters the bench harness reports (I/O per committed transaction is
one of Harmony's headline wins via update coalescence).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.costs import CostModel


@dataclass
class DiskStats:
    page_reads: int = 0
    page_writes: int = 0
    fsyncs: int = 0

    def snapshot(self) -> "DiskStats":
        return DiskStats(self.page_reads, self.page_writes, self.fsyncs)


class SimulatedDisk:
    """A latency-metered page device."""

    def __init__(self, costs: CostModel) -> None:
        self._costs = costs
        self.stats = DiskStats()

    def read_page(self, page_id: int) -> float:
        """Charge one random page read; returns latency in us."""
        self.stats.page_reads += 1
        return self._costs.page_read_us

    def write_page(self, page_id: int) -> float:
        """Charge one page write-back; returns latency in us."""
        self.stats.page_writes += 1
        return self._costs.page_write_us

    def fsync(self) -> float:
        """Charge one flush barrier (group commit); returns latency in us."""
        self.stats.fsyncs += 1
        return self._costs.fsync_us
