"""Write-ahead log with physical and logical modes (Section 2.4).

- **Physical logging** (Fabric, RBC): one record per write containing the
  read-write set / redo image — large records, appended during commit.
- **Logical logging** (deterministic databases, HarmonyBC): only the input
  transaction commands are persisted, *before* execution; replay is
  deterministic so this is sufficient for recovery and "has almost no
  runtime overhead".

Appends accumulate in a group-commit buffer; ``group_commit()`` charges a
single fsync for the whole block (Section 3: group commit is one of the
techniques disk databases use to hide I/O latency).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sim.costs import CostModel
from repro.storage.disk import SimulatedDisk


class LogMode(enum.Enum):
    PHYSICAL = "physical"
    LOGICAL = "logical"


@dataclass
class LogRecord:
    lsn: int
    kind: str
    payload: object
    nbytes: int


@dataclass
class WalStats:
    records: int = 0
    bytes: int = 0
    group_commits: int = 0


class WriteAheadLog:
    """Append-only simulated log with group commit."""

    def __init__(self, disk: SimulatedDisk, costs: CostModel, mode: LogMode) -> None:
        self._disk = disk
        self._costs = costs
        self.mode = mode
        self._records: list[LogRecord] = []
        self._pending: list[LogRecord] = []
        self.stats = WalStats()

    @property
    def record_bytes(self) -> int:
        if self.mode is LogMode.PHYSICAL:
            return self._costs.physical_log_bytes
        return self._costs.logical_log_bytes

    def append(self, kind: str, payload: object) -> float:
        """Buffer one record; returns the CPU cost of formatting it (us)."""
        record = LogRecord(
            lsn=len(self._records) + len(self._pending),
            kind=kind,
            payload=payload,
            nbytes=self.record_bytes,
        )
        self._pending.append(record)
        self.stats.records += 1
        self.stats.bytes += record.nbytes
        return self._costs.log_record_us

    def group_commit(self) -> float:
        """Flush all buffered records with one fsync; returns cost in us."""
        self._records.extend(self._pending)
        self._pending.clear()
        self.stats.group_commits += 1
        return self._disk.fsync()

    def records(self, kind: str | None = None) -> list[LogRecord]:
        """Durable (flushed) records, optionally filtered by kind."""
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.kind == kind]

    def truncate(self) -> None:
        """Drop durable records (after a checkpoint made them redundant)."""
        self._records.clear()
