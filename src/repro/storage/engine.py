"""The disk-oriented database layer: everything behind one facade.

``StorageEngine`` wires the simulated disk, buffer pool, heap file, the
multi-versioned store, the WAL and the checkpoint manager together, and
exposes cost-metered operations to the execution layer:

- ``read_cost(key)`` / ``write_cost(key)`` — charge an index probe and a
  buffer-pool access (possible page miss + eviction write-back);
- ``apply_block(...)`` — install a block's ordered writes and charge the
  group commit;
- ``checkpoint_if_due(...)`` — flush dirty pages every *p* blocks.

Protocol code never touches the disk or pool directly, so swapping the
storage profile (SSD / RAMDisk / memory — Figure 21) is a constructor
argument, not a code path.
"""

from __future__ import annotations

from repro.sim.costs import CostModel, StorageProfile
from repro.storage.bufferpool import BufferPool
from repro.storage.checkpoint import BlockLog, CheckpointManager
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile
from repro.storage.mvstore import MIGRATION_SEQ_BASE, MVStore, SnapshotView, TOMBSTONE
from repro.storage.wal import LogMode, WriteAheadLog

#: Default pool size: holds ~25% of a 10K-record table's pages, so buffer
#: behaviour matters but the working set of a skewed workload stays hot.
DEFAULT_POOL_PAGES = 48


class StorageEngine:
    """A cost-metered, multi-versioned, disk-oriented storage engine."""

    def __init__(
        self,
        costs: CostModel | None = None,
        profile: StorageProfile = StorageProfile.SSD,
        pool_pages: int = DEFAULT_POOL_PAGES,
        log_mode: LogMode = LogMode.LOGICAL,
        checkpoint_interval: int = 10,
        incremental_checkpoints: bool = True,
        checkpoint_base_interval: int = 8,
    ) -> None:
        base = costs or CostModel()
        self.profile = profile
        self.costs = base.with_profile(profile)
        self.disk = SimulatedDisk(self.costs)
        self.pool = BufferPool(pool_pages, self.disk, self.costs)
        self.heap = HeapFile(self.pool, self.costs)
        self.store = MVStore()
        self.wal = WriteAheadLog(self.disk, self.costs, log_mode)
        self.checkpoints = CheckpointManager(
            checkpoint_interval,
            incremental=incremental_checkpoints,
            base_interval=checkpoint_base_interval,
        )
        self.block_log = BlockLog()
        #: initial database state, kept for replay-from-genesis recovery
        self.genesis_state: dict[object, object] = {}
        #: the last applied block's (id, ordered writes) — lets a
        #: checkpoint taken right after the apply record them without
        #: rescanning the store's version chains
        self._last_block_writes: tuple[int, list[tuple[object, object]]] | None = None
        #: ordered (block_id, writes) of every block applied since the last
        #: checkpoint — the next delta checkpoint's payload (drained there);
        #: bounded by the checkpoint interval, like the block log segment
        self._delta_writes: list[tuple[int, list[tuple[object, object]]]] = []

    # ------------------------------------------------------------------ load
    def preload(self, items: dict[object, object]) -> None:
        """Bulk-load initial database state without charging runtime stats."""
        self.genesis_state = dict(items)
        # the implicit base the delta-checkpoint chain folds from (shares
        # values with genesis_state, which recovery already trusts to be
        # immutable-in-place)
        self.checkpoints.genesis = dict(items)
        self.store.load(items)
        for key in items:
            self.heap.insert(key)
        self.reset_stats()

    def reset_stats(self) -> None:
        self.disk.stats.page_reads = 0
        self.disk.stats.page_writes = 0
        self.disk.stats.fsyncs = 0
        self.pool.stats.hits = 0
        self.pool.stats.misses = 0
        self.pool.stats.evictions = 0
        self.pool.stats.dirty_writebacks = 0

    # ---------------------------------------------------------------- access
    def read_cost(self, key: object) -> float:
        """Charge one read access on ``key``'s page; returns us."""
        return self.heap.access(key, write=False)

    def write_cost(self, key: object, insert_if_absent: bool = True) -> float:
        """Charge one write access on ``key``'s page; returns us."""
        if key not in self.heap:
            if not insert_if_absent:
                return self.heap.access(key, write=True)
            return self.heap.insert(key)
        return self.heap.access(key, write=True)

    def scan_cost(self, num_records: int) -> float:
        """Approximate cost of a range scan touching ``num_records`` rows."""
        per_page = max(1, self.heap.num_pages and (len(self.heap) // self.heap.num_pages) or 1)
        pages = max(1, num_records // max(1, per_page))
        cost = self.costs.index_lookup_us
        cost += pages * (self.costs.buffer_admin_us + self.costs.dram_access_us)
        cost += num_records * self.costs.op_cpu_us * 0.25
        return cost

    def snapshot(self, block_id: int) -> SnapshotView:
        return self.store.snapshot(block_id)

    # ---------------------------------------------------------------- commit
    def apply_block(
        self,
        block_id: int,
        ordered_writes: list[tuple[object, object]],
    ) -> float:
        """Install a block's writes (already reordered/coalesced) and charge
        the log + group commit; returns the serial tail cost in us.

        Per-key page-write costs are charged by the caller per committing
        transaction (they happen *inside* the parallel commit step); this
        method charges only the shared serial tail: the WAL group commit.
        """
        cost = 0.0
        for key, value in ordered_writes:
            if self.wal.mode is LogMode.PHYSICAL:
                cost += self.wal.append("write", (block_id, key))
        self.store.apply_block(block_id, ordered_writes)
        self._last_block_writes = (block_id, ordered_writes)
        if self.checkpoints.incremental:
            self._delta_writes.append((block_id, ordered_writes))
        cost += self.wal.group_commit()
        return cost

    def apply_migration(self, block_id: int, items: dict[object, object]) -> None:
        """Install ownership-migration loads into boundary block ``block_id``.

        ``items`` maps moved keys to their shipped values (incoming) or to
        TOMBSTONE (outgoing). Versions land inside the already-applied
        boundary block at :data:`MIGRATION_SEQ_BASE` offsets, and the batch
        is buffered for the next delta checkpoint — a checkpoint taken
        after the boundary must capture migrated values or a recovered
        replica would diverge from one that never crashed.
        """
        if not items:
            return
        self.store.load(items, block_id=block_id, seq_start=MIGRATION_SEQ_BASE)
        for key, value in items.items():
            if value is not TOMBSTONE and key not in self.heap:
                self.heap.insert(key)
        if self.checkpoints.incremental:
            self._delta_writes.append((block_id, list(items.items())))

    def writes_of(self, block_id: int) -> list[tuple[object, object]]:
        """The ordered writes installed for ``block_id``.

        Fast path: the block just applied (the process-prepare backend
        ships every committed block's writes to its workers right after
        the commit). Older blocks fall back to the store's per-block
        watermark walk.
        """
        last = self._last_block_writes
        if last is not None and last[0] == block_id:
            return last[1]
        return self.store.writes_in_block(block_id)

    def log_block_input(self, block: object) -> float:
        """Logical logging: persist the input block before execution."""
        self.block_log.append(block)
        cost = self.wal.append("block", getattr(block, "block_id", None))
        return cost

    def checkpoint_if_due(self, block_id: int, meta: dict | None = None) -> float:
        """Flush dirty pages every ``p`` blocks; returns flush cost in us.

        On the incremental path the durable record is one *delta* — the
        interval's buffered per-block writes, O(interval writes) — so no
        ``materialize`` / deepcopy of the whole keyspace ever runs here.
        ``incremental_checkpoints=False`` retains the seed's full-snapshot
        path as the differential reference.
        """
        if (block_id + 1) % self.checkpoints.interval_blocks != 0:
            return 0.0
        cost = self.pool.flush_all()
        if self.checkpoints.incremental:
            buffered = self._delta_writes
            taken = [entry for entry in buffered if entry[0] <= block_id]
            self._delta_writes = [entry for entry in buffered if entry[0] > block_id]
            # Blocks applied without going through engine.apply_block
            # (tests, manual store pokes) never entered the buffer; the
            # delta must still cover the *whole* interval since the last
            # chain entry, so rescan the store for each missing block —
            # only this degenerate path pays that.
            have = {entry[0] for entry in taken}
            missing = [
                bid
                for bid in range(self.checkpoints.last_checkpoint_block + 1, block_id + 1)
                if bid not in have
            ]
            if missing:
                taken.extend(
                    (bid, self.store.writes_in_block(bid)) for bid in missing
                )
                taken.sort(key=lambda entry: entry[0])
            self.checkpoints.delta_checkpoint(block_id, taken, meta=meta)
            return cost
        # Every executor checkpoints right after apply_block, so the
        # block's writes are in hand; only a checkpoint of some other
        # block (tests, manual calls) pays the store rescan.
        last = self._last_block_writes
        if last is not None and last[0] == block_id:
            block_writes = last[1]
        else:
            block_writes = self.store.writes_in_block(block_id)
        self.checkpoints.force_checkpoint(
            block_id,
            self.store.materialize(),
            prev_state=self.store.materialize_at(block_id - 1),
            meta=meta,
            block_writes=block_writes,
        )
        return cost

    # ----------------------------------------------------------------- stats
    @property
    def io_reads(self) -> int:
        return self.disk.stats.page_reads

    @property
    def io_writes(self) -> int:
        return self.disk.stats.page_writes

    @property
    def buffer_hits(self) -> int:
        return self.pool.stats.hits

    @property
    def buffer_misses(self) -> int:
        return self.pool.stats.misses

    def state_hash(self) -> str:
        return self.store.state_hash()
