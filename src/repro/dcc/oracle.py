"""Exact serializability checking — the measurement oracle.

Two uses:

1. **False-abort accounting** (Figure 13). An abort of ``T`` is *false*
   iff the dependency graph induced by (committed ∪ {T}) is acyclic — i.e.
   a scheduler with perfect information (and command reordering) could have
   committed ``T``. This is protocol-agnostic: it measures the workload's
   inherent conflicts against what the protocol actually aborted.

2. **Test oracle.** Every protocol's committed set must induce an acyclic
   dependency graph (serializability), both within a block and across
   blocks under inter-block parallelism (:class:`HistoryOracle`).

Graph construction (multi-version semantics):

- per key, committed updaters form a chain in apply order (Rule 2 order for
  Harmony; TID/commit order for the value-based baselines) — ww/wr edges;
- a snapshot reader of a key precedes every updater whose write it did not
  observe (rw anti-dependency), and follows every updater whose write it
  did observe (wr);
- range reads contribute the same edges for every key they cover.

Cycle detection is an iterative three-colour DFS (no recursion limits); the
test suite cross-checks it against :mod:`networkx`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.intervals import RangeIndex, SortedKeys, covers
from repro.txn.transaction import Txn


def has_cycle(adjacency: dict[int, set[int]]) -> bool:
    """Iterative DFS cycle check over an adjacency mapping."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour: dict[int, int] = {}
    for root in adjacency:
        if colour.get(root, WHITE) != WHITE:
            continue
        stack: list[tuple[int, iter]] = [(root, iter(adjacency.get(root, ())))]
        colour[root] = GREY
        while stack:
            node, edges = stack[-1]
            advanced = False
            for nxt in edges:
                state = colour.get(nxt, WHITE)
                if state == GREY:
                    return True
                if state == WHITE:
                    colour[nxt] = GREY
                    stack.append((nxt, iter(adjacency.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return False


def _covers(txn: Txn, key: object) -> bool:
    if key in txn.read_set:
        return True
    return any(covers(start, end, key) for start, end in txn.read_ranges)


def block_dependency_graph(
    txns: list[Txn],
    chain_order=lambda t: (t.min_out, t.tid),
) -> dict[int, set[int]]:
    """Dependency graph of one block's transactions (snapshot reads).

    ``txns`` is the node set (typically the committed set, optionally plus
    one hypothetically-committed abortee). All reads are snapshot reads, so
    a reader precedes every updater of the key; updaters of a key are
    chained in ``chain_order``.
    """
    adjacency: dict[int, set[int]] = {t.tid: set() for t in txns}
    writers: dict[object, list[Txn]] = {}
    for txn in txns:
        for key in txn.write_set:
            writers.setdefault(key, []).append(txn)

    for key, updaters in writers.items():
        ordered = sorted(updaters, key=chain_order)
        # ww/wr chain in apply order
        for earlier, later in zip(ordered, ordered[1:]):
            adjacency[earlier.tid].add(later.tid)
        # snapshot readers precede every updater (rw anti-dependency)
        for txn in txns:
            if _covers(txn, key):
                for updater in updaters:
                    if updater.tid != txn.tid:
                        adjacency[txn.tid].add(updater.tid)
    return adjacency


class SerializabilityOracle:
    """Per-block serializability checks and false-abort accounting."""

    @staticmethod
    def committed_is_serializable(txns: list[Txn], chain_order=None) -> bool:
        committed = [t for t in txns if t.committed]
        order = chain_order or (lambda t: (t.min_out, t.tid))
        return not has_cycle(block_dependency_graph(committed, order))

    @staticmethod
    def count_false_aborts(txns: list[Txn], chain_order=None, indexed: bool = True) -> int:
        """Aborts that perfect intra-block scheduling could have avoided.

        ``indexed=True`` (default) builds the committed-only graph and the
        reader/writer indexes *once* and, per abortee, overlays only the
        edges that hypothetically committing it would add — O(committed +
        abortee footprint) instead of a full graph rebuild per abortee.
        The overlay keeps the committed chain's consecutive ww edges that
        inserting the abortee would split (``prev→next`` next to the new
        ``prev→T→next``); those are transitively implied by the added
        edges, so cycle-or-not is unchanged, and the count matches the
        naive rebuild bit-for-bit (differential-tested). ``indexed=False``
        retains the seed's per-abortee rebuild as the reference.
        """
        order = chain_order or (lambda t: (t.min_out, t.tid))
        committed = [t for t in txns if t.committed]
        abortees = [t for t in txns if t.aborted]
        if not abortees:
            return 0
        if not indexed:
            false_count = 0
            for txn in abortees:
                graph = block_dependency_graph(committed + [txn], order)
                if not has_cycle(graph):
                    false_count += 1
            return false_count

        base = block_dependency_graph(committed, order)
        # committed writer chains per key, in chain order, plus the sort
        # keys an abortee's insertion position bisects on
        writers: dict[object, list[Txn]] = {}
        for txn in committed:
            for key in txn.write_set:
                writers.setdefault(key, []).append(txn)
        chains: dict[object, tuple[list, list[Txn]]] = {}
        for key, updaters in writers.items():
            ordered = sorted(updaters, key=order)
            chains[key] = ([order(t) for t in ordered], ordered)
        writer_keys = SortedKeys(writers)
        # committed readers: point reads by key + a stabbing index of ranges
        point_readers: dict[object, list[int]] = {}
        range_readers = RangeIndex()
        for txn in committed:
            for key in txn.read_set:
                point_readers.setdefault(key, []).append(txn.tid)
            for start, end in txn.read_ranges:
                range_readers.add(start, end, txn.tid)

        false_count = 0
        for txn in abortees:
            tid = txn.tid
            tkey = order(txn)
            delta: dict[int, set[int]] = {tid: set()}

            def _add(src: int, dst: int) -> None:
                delta.setdefault(src, set()).add(dst)

            for key in txn.write_set:
                entry = chains.get(key)
                if entry is not None:
                    order_keys, ordered = entry
                    pos = bisect_right(order_keys, tkey)
                    if pos > 0:
                        _add(ordered[pos - 1].tid, tid)
                    if pos < len(ordered):
                        _add(tid, ordered[pos].tid)
                # snapshot readers precede the hypothetical new updater
                seen_readers = set()
                for rtid in point_readers.get(key, ()):
                    if rtid not in seen_readers:
                        seen_readers.add(rtid)
                        _add(rtid, tid)
                for rtid in range_readers.stab(key):
                    if rtid not in seen_readers:
                        seen_readers.add(rtid)
                        _add(rtid, tid)
            # the abortee reads before every committed updater it covers
            reads = txn.read_set
            for key in reads:
                entry = chains.get(key)
                if entry is not None:
                    for updater in entry[1]:
                        if updater.tid != tid:
                            _add(tid, updater.tid)
            for start, end in txn.read_ranges:
                for key in writer_keys.in_range(start, end):
                    if key not in reads:
                        for updater in chains[key][1]:
                            if updater.tid != tid:
                                _add(tid, updater.tid)

            merged = dict(base)
            for node, extra in delta.items():
                existing = merged.get(node)
                merged[node] = (existing | extra) if existing else extra
            if not has_cycle(merged):
                false_count += 1
        return false_count


@dataclass
class _WritePosition:
    """Where a committed write landed: (block, position-in-key-chain)."""

    block_id: int
    chain_pos: int
    tid: int


@dataclass
class HistoryOracle:
    """Serializability across blocks (the inter-block-parallelism check).

    Executors feed each block's committed transactions plus the per-key
    apply chains; the oracle rebuilds the full multi-version dependency
    graph of the history and checks it for cycles.

    ``indexed=True`` (default) resolves each range read by slicing a
    :class:`~repro.intervals.SortedKeys` index over the write-chain keys
    (two bisects + the covered keys) and memoizes the per-key ww/wr chain
    edges across :meth:`build_graph` calls. Read edges are *not* cached —
    a chain growing in a later block retroactively adds edges for old
    readers, so they are re-derived from every recorded read each call
    (each now a stab instead of a full-chain scan). ``indexed=False``
    retains the seed's scan of every chain per range read as the
    differential-testing reference; both produce identical adjacency.
    """

    indexed: bool = True
    _read_facts: dict[int, dict] = field(default_factory=dict)
    _range_facts: dict[int, list] = field(default_factory=dict)
    _snapshot_block: dict[int, int] = field(default_factory=dict)
    _chains: dict[object, list] = field(default_factory=dict)
    _tids: list[int] = field(default_factory=list)
    #: indexed-path caches (valid only while the recorded facts grow
    #: append-only, which record_block guarantees)
    _key_index: SortedKeys | None = field(default=None, repr=False, compare=False)
    _chain_edges: list = field(default_factory=list, repr=False, compare=False)
    _chain_folded: dict = field(default_factory=dict, repr=False, compare=False)

    def record_block(
        self,
        block_id: int,
        txns: list[Txn],
        key_applies,
        snapshot_block_id: int | None = None,
    ) -> None:
        snap = snapshot_block_id if snapshot_block_id is not None else block_id - 1
        committed = {t.tid for t in txns if t.committed}
        for txn in txns:
            if txn.tid not in committed:
                continue
            self._tids.append(txn.tid)
            self._read_facts[txn.tid] = dict(txn.read_set)
            self._range_facts[txn.tid] = list(txn.read_ranges)
            self._snapshot_block[txn.tid] = snap
        new_keys = []
        for item in key_applies:
            chain = self._chains.get(item.key)
            if chain is None:
                chain = self._chains[item.key] = []
                new_keys.append(item.key)
            ordered = [tid for tid in item.updater_tids if tid in committed]
            for pos, tid in enumerate(ordered):
                chain.append(_WritePosition(block_id, pos, tid))
        if new_keys and self._key_index is not None:
            self._key_index.extend(new_keys)

    def _add_read_edges(
        self,
        adjacency: dict[int, set[int]],
        tid: int,
        key: object,
        read_block: int,
    ) -> None:
        chain = self._chains.get(key)
        if not chain:
            return
        for write in chain:
            if write.tid == tid:
                continue
            if write.block_id > read_block:
                adjacency[tid].add(write.tid)  # rw: read the before-image
            else:
                adjacency[write.tid].add(tid)  # wr: observed the write

    def _fold_chain_edges(self) -> list:
        """Extend the memoized ww/wr chain-edge list with entries appended
        since the previous :meth:`build_graph` call (chains are append-only,
        so already-folded pairs never change)."""
        edges = self._chain_edges
        folded = self._chain_folded
        for key, chain in self._chains.items():
            done = folded.get(key, 0)
            n = len(chain)
            if done == n:
                continue
            for i in range(done - 1 if done else 0, n - 1):
                earlier, later = chain[i], chain[i + 1]
                if earlier.tid != later.tid:
                    edges.append((earlier.tid, later.tid))
            folded[key] = n
        return edges

    def build_graph(self) -> dict[int, set[int]]:
        if not self.indexed:
            return self._build_graph_naive()
        adjacency: dict[int, set[int]] = {tid: set() for tid in self._tids}

        # ww/wr chains per key, across blocks (memoized across calls).
        for earlier_tid, later_tid in self._fold_chain_edges():
            adjacency[earlier_tid].add(later_tid)

        if self._key_index is None:
            self._key_index = SortedKeys(self._chains)
        key_index = self._key_index

        # read edges: version/snapshot comparison decides before vs after.
        for tid in self._tids:
            snap = self._snapshot_block.get(tid, -1)
            reads = self._read_facts.get(tid, {})
            for key, version in reads.items():
                read_block = version[0] if version is not None else snap
                self._add_read_edges(adjacency, tid, key, read_block)
            for start, end in self._range_facts.get(tid, []):
                # stab the chain-key directory instead of scanning it
                for key in key_index.in_range(start, end):
                    if key not in reads:
                        self._add_read_edges(adjacency, tid, key, snap)
        return adjacency

    def _build_graph_naive(self) -> dict[int, set[int]]:
        """Seed implementation: every range read scans every write chain.
        Retained as the differential-testing reference."""
        adjacency: dict[int, set[int]] = {tid: set() for tid in self._tids}

        # ww/wr chains per key, across blocks (apply order is global).
        for chain in self._chains.values():
            for earlier, later in zip(chain, chain[1:]):
                if earlier.tid != later.tid:
                    adjacency[earlier.tid].add(later.tid)

        # read edges: version/snapshot comparison decides before vs after.
        for tid in self._tids:
            snap = self._snapshot_block.get(tid, -1)
            reads = self._read_facts.get(tid, {})
            for key, version in reads.items():
                read_block = version[0] if version is not None else snap
                self._add_read_edges(adjacency, tid, key, read_block)
            for start, end in self._range_facts.get(tid, []):
                for key in self._chains:
                    if covers(start, end, key) and key not in reads:
                        self._add_read_edges(adjacency, tid, key, snap)
        return adjacency

    def is_serializable(self) -> bool:
        return not has_cycle(self.build_graph())
