"""Aria: deterministic OCC from the deterministic-database world.

Per the Aria paper (Lu et al., VLDB 2020) and Section 2.2.2: every
transaction in a block executes against the block snapshot and *reserves*
its writes; the reservation table awards each key to the smallest TID.
A transaction ``T`` aborts when:

- **WAW**: a smaller TID reserved a key ``T`` writes (Figure 2 — "on seeing
  a ww-dependency, Aria aborts the one with a larger TID"); or
- without the reordering optimization, **RAW**: ``T`` read a key a smaller
  TID writes;
- with Aria's deterministic reordering (default here, as in AriaBC),
  **RAW and WAR**: the abort happens only when ``T`` both read a
  smaller-TID writer's key *and* wrote a key some smaller TID read.

Surviving transactions have disjoint write sets, so the commit step applies
evaluated values fully in parallel. The price is the high abort rate under
ww contention that Harmony's update reordering removes.
"""

from __future__ import annotations

from repro.execution import (
    BlockExecution,
    DCCExecutor,
    PreparedBlock,
    simulate_transactions,
)
from repro.intervals import SortedKeys
from repro.storage.engine import StorageEngine
from repro.txn.commands import apply_safely
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import AbortReason, Txn


class AriaExecutor(DCCExecutor):
    """Aria DCC bound to a storage engine (AriaBC's database layer)."""

    name = "aria"
    parallel_commit = True
    supports_two_phase = True

    def __init__(
        self,
        engine: StorageEngine,
        registry: ProcedureRegistry,
        deterministic_reordering: bool = True,
        indexed: bool = True,
    ) -> None:
        super().__init__(engine, registry)
        self.deterministic_reordering = deterministic_reordering
        #: range-read RAW checks via a sorted reservation-key index
        #: (``False`` retains the naive full-table scan for differential
        #: testing / benchmarking).
        self.indexed = indexed

    def clone_args(self) -> tuple:
        return (self.deterministic_reordering, self.indexed)

    # -- process-backend hooks ----------------------------------------------
    def detach_prepared(self, prepared: PreparedBlock) -> PreparedBlock:
        """The payload embeds the block snapshot (a live store view); drop
        it for the pipe — the main process's multi-version store retains
        the same height, so :meth:`attach_prepared` rebuilds it exactly."""
        _snapshot, committed = prepared.payload
        prepared.payload = (None, committed)
        return prepared

    def attach_prepared(self, prepared: PreparedBlock) -> PreparedBlock:
        snapshot, committed = prepared.payload
        if snapshot is None:
            lag = prepared.block_id - prepared.snapshot_block_id
            prepared.payload = (self.snapshot_for(prepared.block_id, lag), committed)
        return prepared

    def prepare_block(self, block_id: int, txns: list[Txn]) -> PreparedBlock:
        """Simulate, reserve and decide — Aria's whole validation phase is
        reservation-table lookups, so the local vote falls out here; writes
        are deferred to :meth:`commit_block`."""
        snapshot = self.snapshot_for(block_id, lag=1)
        sim_durations = simulate_transactions(txns, snapshot, self.registry, self.engine)

        write_reservations: dict[object, int] = {}
        read_reservations: dict[object, int] = {}
        for txn in sorted(txns, key=lambda t: t.tid):
            if txn.aborted:
                continue
            for key in txn.write_set:
                write_reservations.setdefault(key, txn.tid)
            for key in txn.read_set:
                read_reservations.setdefault(key, txn.tid)

        #: sorted write-reservation keys — each range read becomes two
        #: bisects plus the covered keys instead of a scan of the whole
        #: reservation table (built lazily, only when a range read exists).
        reserved_keys: SortedKeys | None = None

        committed: list[Txn] = []
        for txn in sorted(txns, key=lambda t: t.tid):
            if txn.aborted:
                continue
            waw = any(
                write_reservations.get(key, txn.tid) < txn.tid for key in txn.write_set
            )
            raw = any(
                write_reservations.get(key, txn.tid) < txn.tid for key in txn.read_set
            )
            if not raw and txn.read_ranges:
                if self.indexed:
                    if reserved_keys is None:
                        reserved_keys = SortedKeys(write_reservations)
                    raw = any(
                        write_reservations[key] < txn.tid
                        for start, end in txn.read_ranges
                        for key in reserved_keys.in_range(start, end)
                    )
                else:
                    raw = any(
                        owner < txn.tid and txn.reads(key)
                        for key, owner in write_reservations.items()
                    )
            war = any(
                read_reservations.get(key, txn.tid) < txn.tid for key in txn.write_set
            )
            if waw:
                txn.mark_aborted(AbortReason.WAW)
                continue
            if self.deterministic_reordering:
                if raw and war:
                    txn.mark_aborted(AbortReason.RAW)
                    continue
            elif raw:
                txn.mark_aborted(AbortReason.RAW)
                continue
            committed.append(txn)

        return PreparedBlock(
            block_id=block_id,
            txns=txns,
            sim_durations_us=sim_durations,
            snapshot_block_id=block_id - 1,
            payload=(snapshot, committed),
        )

    def commit_block(
        self, prepared: PreparedBlock, abort_tids: frozenset = frozenset()
    ) -> BlockExecution:
        block_id, txns = prepared.block_id, prepared.txns
        snapshot, survivors = prepared.payload
        self.force_aborts(txns, abort_tids)

        # Parallel commit: disjoint write sets, values evaluated against the
        # block snapshot (Aria ships values, not commands). Only locally
        # owned keys are installed (``in_scope`` is all keys unsharded).
        commit_durations: list[float] = []
        ordered_writes: list[tuple[object, object]] = []
        for txn in survivors:
            if txn.aborted:  # cross-shard veto arrived after the local vote
                continue
            txn.mark_committed()
            cost = self.engine.costs.op_cpu_us
            for key in txn.updated_keys:
                if not self.in_scope(key):
                    continue
                base, _version = snapshot.get(key)
                ordered_writes.append((key, apply_safely(txn.write_set[key], base)))
                cost += self.engine.write_cost(key)
            txn.commit_cost_us = cost
            commit_durations.append(cost)

        ordered_writes.sort(key=lambda kv: repr(kv[0]))
        tail = self.engine.apply_block(block_id, ordered_writes)
        tail += self.engine.checkpoint_if_due(block_id)

        return BlockExecution(
            block_id=block_id,
            txns=txns,
            sim_durations_us=prepared.sim_durations_us,
            commit_durations_us=commit_durations,
            serial_commit=False,
            post_commit_serial_us=tail,
            stats=self.make_stats(block_id, txns),
        )
