"""RBC: the blockchain relational database (Nathan et al., VLDB 2019).

An Order-Execute blockchain whose replicas execute a block concurrently
against the block snapshot and then validate **serially** in TID order
(Section 2.2.2: "it still needs to validate transactions serially to uphold
determinism"). Validation is based on serializable snapshot isolation's
dangerous structure, evaluated transaction-locally:

- first-committer-wins on ww conflicts (snapshot isolation's base rule —
  "AriaBC and RBC abort a transaction on seeing a ww-dependency"); and
- an SSI pivot check: abort ``T`` when it has both an inbound and an
  outbound rw-antidependency among the block's transactions.

Fewer false aborts than Fabric's stale-read rule, but the serial validation
caps commit-step parallelism — RBC's optimal block size is small
(Figure 9/10).
"""

from __future__ import annotations

from repro.core.dependencies import BlockDependencyIndex
from repro.execution import (
    BlockExecution,
    DCCExecutor,
    OverlayView,
    PreparedBlock,
    simulate_transactions,
)
from repro.txn.commands import apply_safely
from repro.txn.transaction import AbortReason, Txn


class RBCExecutor(DCCExecutor):
    """RBC DCC bound to a storage engine."""

    name = "rbc"
    parallel_commit = False
    supports_two_phase = True

    def prepare_block(self, block_id: int, txns: list[Txn]) -> PreparedBlock:
        """Simulate, then run the serial validation pass (first-committer-
        wins + SSI pivot) to a local vote; physical writes wait for
        :meth:`commit_block`. All reads came from the pre-block snapshot, so
        deferring the writes cannot change any decision."""
        snapshot = self.snapshot_for(block_id, lag=1)
        sim_durations = simulate_transactions(txns, snapshot, self.registry, self.engine)

        index = BlockDependencyIndex(txns)
        has_in_rw: set[int] = set()
        has_out_rw: set[int] = set()
        for edge in index.rw_edges():
            has_out_rw.add(edge.reader_tid)  # reader rw-points at writer
            has_in_rw.add(edge.writer_tid)

        committed_writes: dict[object, int] = {}
        validation_costs: list[float] = []
        for txn in sorted(txns, key=lambda t: t.tid):
            validation_costs.append(
                self.engine.costs.op_cpu_us * (1 + len(txn.read_set) + len(txn.write_set))
            )
            if txn.aborted:
                continue
            ww = any(key in committed_writes for key in txn.write_set)
            if ww:
                txn.mark_aborted(AbortReason.WAW)
                continue
            if txn.tid in has_in_rw and txn.tid in has_out_rw:
                txn.mark_aborted(AbortReason.SSI_DANGEROUS_STRUCTURE)
                continue
            for key in txn.write_set:
                committed_writes[key] = txn.tid

        return PreparedBlock(
            block_id=block_id,
            txns=txns,
            sim_durations_us=sim_durations,
            snapshot_block_id=block_id - 1,
            payload=(snapshot, validation_costs),
        )

    # -- process-backend hooks ----------------------------------------------
    def detach_prepared(self, prepared: PreparedBlock) -> PreparedBlock:
        """Drop the embedded snapshot view for the pipe; the main store
        retains the height and :meth:`attach_prepared` rebinds it."""
        _snapshot, validation_costs = prepared.payload
        prepared.payload = (None, validation_costs)
        return prepared

    def attach_prepared(self, prepared: PreparedBlock) -> PreparedBlock:
        snapshot, validation_costs = prepared.payload
        if snapshot is None:
            lag = prepared.block_id - prepared.snapshot_block_id
            prepared.payload = (
                self.snapshot_for(prepared.block_id, lag),
                validation_costs,
            )
        return prepared

    def commit_block(
        self, prepared: PreparedBlock, abort_tids: frozenset = frozenset()
    ) -> BlockExecution:
        block_id, txns = prepared.block_id, prepared.txns
        snapshot, validation_costs = prepared.payload
        self.force_aborts(txns, abort_tids)

        overlay = OverlayView(snapshot, block_id)
        commit_durations: list[float] = []
        for i, txn in enumerate(sorted(txns, key=lambda t: t.tid)):
            if txn.aborted:
                commit_durations.append(validation_costs[i])
                continue
            txn.mark_committed()
            cost = validation_costs[i]
            for key in txn.updated_keys:
                if not self.in_scope(key):
                    continue
                base, _version = snapshot.get(key)
                overlay.put(key, apply_safely(txn.write_set[key], base))
                cost += self.engine.write_cost(key)
            txn.commit_cost_us = cost
            commit_durations.append(cost)

        tail = self.engine.apply_block(block_id, overlay.ordered_writes())
        tail += self.engine.checkpoint_if_due(block_id)

        return BlockExecution(
            block_id=block_id,
            txns=txns,
            sim_durations_us=prepared.sim_durations_us,
            commit_durations_us=commit_durations,
            serial_commit=True,
            post_commit_serial_us=tail,
            stats=self.make_stats(block_id, txns),
        )
