"""RBC: the blockchain relational database (Nathan et al., VLDB 2019).

An Order-Execute blockchain whose replicas execute a block concurrently
against the block snapshot and then validate **serially** in TID order
(Section 2.2.2: "it still needs to validate transactions serially to uphold
determinism"). Validation is based on serializable snapshot isolation's
dangerous structure, evaluated transaction-locally:

- first-committer-wins on ww conflicts (snapshot isolation's base rule —
  "AriaBC and RBC abort a transaction on seeing a ww-dependency"); and
- an SSI pivot check: abort ``T`` when it has both an inbound and an
  outbound rw-antidependency among the block's transactions.

Fewer false aborts than Fabric's stale-read rule, but the serial validation
caps commit-step parallelism — RBC's optimal block size is small
(Figure 9/10).
"""

from __future__ import annotations

from repro.core.dependencies import BlockDependencyIndex
from repro.execution import BlockExecution, DCCExecutor, OverlayView, simulate_transactions
from repro.txn.commands import apply_safely
from repro.txn.transaction import AbortReason, Txn


class RBCExecutor(DCCExecutor):
    """RBC DCC bound to a storage engine."""

    name = "rbc"
    parallel_commit = False

    def execute_block(self, block_id: int, txns: list[Txn]) -> BlockExecution:
        snapshot = self.engine.snapshot(block_id - 1)
        sim_durations = simulate_transactions(txns, snapshot, self.registry, self.engine)

        index = BlockDependencyIndex(txns)
        has_in_rw: set[int] = set()
        has_out_rw: set[int] = set()
        for edge in index.rw_edges():
            has_out_rw.add(edge.reader_tid)  # reader rw-points at writer
            has_in_rw.add(edge.writer_tid)

        overlay = OverlayView(snapshot, block_id)
        committed_writes: dict[object, int] = {}
        commit_durations: list[float] = []
        for txn in sorted(txns, key=lambda t: t.tid):
            validation_cost = self.engine.costs.op_cpu_us * (
                1 + len(txn.read_set) + len(txn.write_set)
            )
            if txn.aborted:
                commit_durations.append(validation_cost)
                continue
            ww = any(key in committed_writes for key in txn.write_set)
            if ww:
                txn.mark_aborted(AbortReason.WAW)
                commit_durations.append(validation_cost)
                continue
            if txn.tid in has_in_rw and txn.tid in has_out_rw:
                txn.mark_aborted(AbortReason.SSI_DANGEROUS_STRUCTURE)
                commit_durations.append(validation_cost)
                continue
            txn.mark_committed()
            cost = validation_cost
            for key in txn.updated_keys:
                base, _version = snapshot.get(key)
                overlay.put(key, apply_safely(txn.write_set[key], base))
                committed_writes[key] = txn.tid
                cost += self.engine.write_cost(key)
            txn.commit_cost_us = cost
            commit_durations.append(cost)

        tail = self.engine.apply_block(block_id, overlay.ordered_writes())
        tail += self.engine.checkpoint_if_due(block_id)

        return BlockExecution(
            block_id=block_id,
            txns=txns,
            sim_durations_us=sim_durations,
            commit_durations_us=commit_durations,
            serial_commit=True,
            post_commit_serial_us=tail,
            stats=self.make_stats(block_id, txns),
        )
