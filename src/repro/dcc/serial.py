"""Serial Order-Execute baseline (Quorum / Diem / Concord style).

Every replica executes the block's transactions one at a time in TID order
against the latest state. Trivially deterministic and serializable, zero
aborts, zero concurrency — the floor that all DCC protocols improve on
(Section 2.1.2: "one way is to enforce the individual replicas to honor the
transaction order in the block by executing the transactions serially").
"""

from __future__ import annotations

from repro.execution import BlockExecution, DCCExecutor, OverlayView
from repro.txn.commands import apply_safely
from repro.txn.context import SimulationContext
from repro.txn.transaction import AbortReason, Txn


class SerialExecutor(DCCExecutor):
    """One-at-a-time execution; each transaction sees its predecessors."""

    name = "serial"
    parallel_commit = False

    def execute_block(self, block_id: int, txns: list[Txn]) -> BlockExecution:
        overlay = OverlayView(self.engine.snapshot(block_id - 1), block_id)
        durations: list[float] = []
        for txn in sorted(txns, key=lambda t: t.tid):
            ctx = SimulationContext(txn, overlay, self.engine)
            try:
                txn.output = self.registry.execute(ctx)
            except (KeyError, TypeError, ValueError):
                txn.mark_aborted(AbortReason.EXECUTION_ERROR)
                durations.append(ctx.cost_us)
                continue
            for key in txn.updated_keys:
                base, _version = overlay.get(key)
                overlay.put(key, apply_safely(txn.write_set[key], base))
                ctx.charge(self.engine.write_cost(key))
            txn.mark_committed()
            txn.sim_cost_us = ctx.cost_us
            durations.append(ctx.cost_us)

        tail = self.engine.apply_block(block_id, overlay.ordered_writes())
        tail += self.engine.checkpoint_if_due(block_id)
        return BlockExecution(
            block_id=block_id,
            txns=txns,
            sim_durations_us=[],
            commit_durations_us=durations,
            serial_commit=True,
            post_commit_serial_us=tail,
            stats=self.make_stats(block_id, txns),
        )
