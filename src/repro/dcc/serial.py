"""Serial Order-Execute baseline (Quorum / Diem / Concord style).

Every replica executes the block's transactions one at a time in TID order
against the latest state. Trivially deterministic and serializable, zero
aborts, zero concurrency — the floor that all DCC protocols improve on
(Section 2.1.2: "one way is to enforce the individual replicas to honor the
transaction order in the block by executing the transactions serially").
"""

from __future__ import annotations

from repro.execution import BlockExecution, DCCExecutor, OverlayView, PreparedBlock
from repro.txn.commands import apply_safely
from repro.txn.context import SimulationContext
from repro.txn.transaction import AbortReason, Txn


class SerialExecutor(DCCExecutor):
    """One-at-a-time execution; each transaction sees its predecessors."""

    name = "serial"
    parallel_commit = False
    supports_two_phase = True

    def prepare_block(self, block_id: int, txns: list[Txn]) -> PreparedBlock:
        """Run the whole serial schedule into an overlay; only the install
        is deferred. Serial reads its in-block predecessors, so a sharded
        deployment cannot use it across shards (see :meth:`commit_block`) —
        the split exists so the single-shard driver has one code path."""
        overlay = OverlayView(self.snapshot_for(block_id, lag=1), block_id)
        durations: list[float] = []
        for txn in sorted(txns, key=lambda t: t.tid):
            ctx = SimulationContext(txn, overlay, self.engine)
            try:
                txn.output = self.registry.execute(ctx)
            except (KeyError, TypeError, ValueError):
                txn.mark_aborted(AbortReason.EXECUTION_ERROR)
                durations.append(ctx.cost_us)
                continue
            for key in txn.updated_keys:
                base, _version = overlay.get(key)
                overlay.put(key, apply_safely(txn.write_set[key], base))
                ctx.charge(self.engine.write_cost(key))
            txn.mark_committed()
            txn.sim_cost_us = ctx.cost_us
            durations.append(ctx.cost_us)

        return PreparedBlock(
            block_id=block_id,
            txns=txns,
            sim_durations_us=[],
            snapshot_block_id=block_id - 1,
            payload=(overlay, durations),
        )

    def commit_block(
        self, prepared: PreparedBlock, abort_tids: frozenset = frozenset()
    ) -> BlockExecution:
        block_id, txns = prepared.block_id, prepared.txns
        overlay, durations = prepared.payload
        pending_vetos = [
            t.tid for t in txns if t.tid in abort_tids and not t.aborted
        ]
        if pending_vetos:
            # A veto would invalidate every later transaction's reads of the
            # overlay; serial execution is therefore single-shard only.
            raise ValueError(
                f"serial execution cannot honour cross-shard vetos {pending_vetos}"
            )

        tail = self.engine.apply_block(block_id, overlay.ordered_writes())
        tail += self.engine.checkpoint_if_due(block_id)
        return BlockExecution(
            block_id=block_id,
            txns=txns,
            sim_durations_us=[],
            commit_durations_us=durations,
            serial_commit=True,
            post_commit_serial_us=tail,
            stats=self.make_stats(block_id, txns),
        )
