"""Deterministic concurrency control protocols (Table 2).

Alongside Harmony (:mod:`repro.core`), this package implements every DCC
the paper compares against, all behind one block-executor interface:

- :mod:`repro.dcc.serial` — serial execution (Quorum/Diem style; the
  Order-Execute floor).
- :mod:`repro.dcc.aria` — Aria: snapshot simulation, write reservations,
  WAW/RAW aborts, optional deterministic reordering (AriaBC's engine).
- :mod:`repro.dcc.rbc` — RBC: SSI dangerous-structure validation with
  serial commit (blockchain relational database).
- :mod:`repro.dcc.fabric` — Fabric's SOV validation: stale-read (version
  check) aborts, serial validation.
- :mod:`repro.dcc.fastfabric` — FastFabric#: orderer-side dependency-graph
  construction, cycle elimination and reordering; validators only check
  signatures.
- :mod:`repro.dcc.oracle` — an exact serializability checker used to count
  false aborts (Figure 13) and as the test oracle for every protocol.
"""

from repro.dcc.aria import AriaExecutor
from repro.dcc.base import BlockExecution, DCCExecutor, simulate_transactions
from repro.dcc.fabric import FabricValidator, endorsed_value_writes
from repro.dcc.fastfabric import FastFabricOrderer, FastFabricValidator, OrderingOutcome
from repro.dcc.oracle import HistoryOracle, SerializabilityOracle, has_cycle
from repro.dcc.rbc import RBCExecutor
from repro.dcc.serial import SerialExecutor

__all__ = [
    "AriaExecutor",
    "BlockExecution",
    "DCCExecutor",
    "FabricValidator",
    "FastFabricOrderer",
    "FastFabricValidator",
    "HistoryOracle",
    "OrderingOutcome",
    "RBCExecutor",
    "SerialExecutor",
    "SerializabilityOracle",
    "endorsed_value_writes",
    "has_cycle",
    "simulate_transactions",
]
