"""Fabric's Simulate-Order-Validate validation phase (Section 2.1.1).

Transactions arrive with read-write sets collected during *endorsement*
(simulation against some endorser's possibly-stale local state). The
validator processes the block serially in TID order: a transaction aborts
on any **stale read** — a read whose version no longer matches the
replica's current state (overwritten by an earlier block or by an earlier
transaction of the same block). This is the rw-dependency dangerous
structure the paper calls "often overly conservative" (the Figure 2
discussion: Fabric would abort T2 even though T2 -> T1 is serializable).

Writes are value writes (the endorsed write set), applied as each
transaction validates — MVCC version tags advance per transaction, exactly
what later version checks compare against. Physical logging (the rw-sets)
is charged per record.
"""

from __future__ import annotations

from repro.execution import BlockExecution, DCCExecutor, OverlayView
from repro.txn.commands import apply_safely
from repro.txn.transaction import AbortReason, Txn


class FabricValidator(DCCExecutor):
    """Fabric v2.x-style serial validate-and-apply."""

    name = "fabric"
    parallel_commit = False

    def execute_block(self, block_id: int, txns: list[Txn]) -> BlockExecution:
        overlay = OverlayView(self.engine.store.latest_snapshot(), block_id)
        commit_durations: list[float] = []

        for txn in sorted(txns, key=lambda t: t.tid):
            # signature verification + version checks, all serial
            cost = self.engine.costs.verify_us
            cost += self.engine.costs.op_cpu_us * max(1, len(txn.read_set))
            if txn.aborted:  # endorsement already failed it
                commit_durations.append(cost)
                continue
            stale = False
            for key, endorsed_version in txn.read_set.items():
                _value, current_version = overlay.get(key)
                # version check probes MVCC metadata (cached), not the page
                cost += self.engine.costs.index_lookup_us
                cost += self.engine.costs.dram_access_us
                if current_version != endorsed_version:
                    stale = True
                    break
            if stale:
                txn.mark_aborted(AbortReason.STALE_READ)
                commit_durations.append(cost)
                continue
            txn.mark_committed()
            for key in txn.updated_keys:
                base, _version = overlay.get(key)
                overlay.put(key, apply_safely(txn.write_set[key], base))
                cost += self.engine.write_cost(key)
                cost += self.engine.wal.append("rwset", (txn.tid, key))
            txn.commit_cost_us = cost
            commit_durations.append(cost)

        tail = self.engine.apply_block(block_id, overlay.ordered_writes())
        tail += self.engine.checkpoint_if_due(block_id)

        return BlockExecution(
            block_id=block_id,
            txns=txns,
            sim_durations_us=[],
            commit_durations_us=commit_durations,
            serial_commit=True,
            post_commit_serial_us=tail,
            stats=self.make_stats(block_id, txns),
        )


def endorsed_value_writes(txn: Txn, snapshot) -> None:
    """Freeze a transaction's commands into endorsed value writes.

    SOV ships evaluated write sets: each command is evaluated against the
    endorser's snapshot and replaced by a blind value write. Used by the
    SOV pipeline after endorsement simulation.
    """
    from repro.txn.commands import SetValue

    for key in list(txn.write_set):
        base, _version = snapshot.get(key)
        value = apply_safely(txn.write_set[key], base)
        # TOMBSTONE round-trips: SetValue(TOMBSTONE) installs the deletion.
        txn.write_set[key] = SetValue(value)
