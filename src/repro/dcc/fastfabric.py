"""FastFabric# — orderer-side dependency-graph scheduling (Section 2.2.2).

Fabric++/Fabric# move serializability out of the validators and into the
ordering service: the orderer builds the full dependency graph of a block's
endorsed read-write sets, removes transactions until the graph is acyclic
(fewer false aborts than any dangerous-structure rule — it only aborts on
real cycles), topologically reorders the survivors, and ships the block.
Validators then check signatures only (the paper's footnote 1).

The costs that make it lose under contention are modelled explicitly:

- the graph build + traversal is **serial and unparallelizable**, charged
  on the block's critical path (YCSB profiling in the paper: ~75% of
  runtime);
- blocks whose graph grows beyond a cap get transactions dropped
  (GRAPH_OVERFLOW) — "in its implementation, it drops some transactions to
  avoid an overly large dependency graph" (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.execution import BlockExecution, DCCExecutor, OverlayView
from repro.txn.commands import apply_safely
from repro.txn.transaction import AbortReason, Txn


def find_cycle(adjacency: dict[int, set[int]]) -> list[int] | None:
    """Return one cycle (as a node list) or ``None``; iterative DFS."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in adjacency}
    for root in sorted(adjacency):
        if colour[root] != WHITE:
            continue
        path: list[int] = []
        stack: list[tuple[int, list[int]]] = [(root, sorted(adjacency.get(root, ())))]
        colour[root] = GREY
        path.append(root)
        while stack:
            node, edges = stack[-1]
            if edges:
                nxt = edges.pop(0)
                state = colour.get(nxt, WHITE)
                if state == GREY:
                    return path[path.index(nxt):]
                if state == WHITE:
                    colour[nxt] = GREY
                    path.append(nxt)
                    stack.append((nxt, sorted(adjacency.get(nxt, ()))))
            else:
                colour[node] = BLACK
                path.pop()
                stack.pop()
    return None


@dataclass
class OrderingOutcome:
    """What the orderer ships: survivors in commit order, plus the bill."""

    ordered_txns: list[Txn]
    traversal_cost_us: float
    cycles_broken: int
    dropped: int


class FastFabricOrderer:
    """Builds, prunes and reorders the block dependency graph."""

    def __init__(
        self,
        max_graph_txns: int = 150,
        traversal_unit_us: float = 2.0,
        build_unit_us: float = 15.0,
        reorder_unit_us: float = 130.0,
    ) -> None:
        self.max_graph_txns = max_graph_txns
        self.traversal_unit_us = traversal_unit_us
        #: serial per-rw-set-entry cost of building the conflict index at
        #: the orderer (deserialize, hash, insert)
        self.build_unit_us = build_unit_us
        #: per (transaction x edge) cost of the abort-minimal reordering —
        #: each unit rescans two endorsed rw-sets. Calibrated so that with
        #: YCSB's 10-record transactions the traversal dominates the block
        #: (the paper's profiling: ~75% of a transaction's runtime goes to
        #: graph traversal), while Smallbank's sparse graphs stay cheap
        #: (FastFabric# > Fabric on Smallbank, < on YCSB; Figures 7/8).
        self.reorder_unit_us = reorder_unit_us

    def process(self, txns: list[Txn], state_view=None) -> OrderingOutcome:
        """Early validation + cycle elimination + topological reorder.

        ``state_view`` (optional ``get(key) -> (value, version)``) is the
        orderer's up-to-date view for cross-block stale-read filtering.
        """
        active: list[Txn] = []
        dropped = 0
        for txn in sorted(txns, key=lambda t: t.tid):
            if txn.aborted:
                continue
            if len(active) >= self.max_graph_txns:
                txn.mark_aborted(AbortReason.GRAPH_OVERFLOW)
                dropped += 1
                continue
            if state_view is not None and self._is_stale(txn, state_view):
                txn.mark_aborted(AbortReason.STALE_READ)
                continue
            active.append(txn)

        adjacency = self._build_graph(active)
        edge_count = sum(len(v) for v in adjacency.values())
        entries = sum(len(t.read_set) + len(t.write_set) for t in active)
        cost = self.traversal_unit_us * (len(active) + edge_count)
        cost += self.build_unit_us * entries
        cost += self.reorder_unit_us * len(active) * edge_count

        cycles = 0
        victims: set[int] = set()
        while True:
            cycle = find_cycle(adjacency)
            if cycle is None:
                break
            cycles += 1
            victim = max(
                cycle,
                key=lambda tid: (len(adjacency[tid]), tid),
            )
            victims.add(victim)
            adjacency.pop(victim)
            for targets in adjacency.values():
                targets.discard(victim)
            cost += self.traversal_unit_us * (len(adjacency) + edge_count)

        by_tid = {t.tid: t for t in active}
        for tid in victims:
            by_tid[tid].mark_aborted(AbortReason.GRAPH_CYCLE)

        order = self._topological_order(adjacency)
        ordered = [by_tid[tid] for tid in order]
        return OrderingOutcome(
            ordered_txns=ordered,
            traversal_cost_us=cost,
            cycles_broken=cycles,
            dropped=dropped,
        )

    @staticmethod
    def _is_stale(txn: Txn, state_view) -> bool:
        for key, endorsed_version in txn.read_set.items():
            _value, current = state_view.get(key)
            if current != endorsed_version:
                return True
        return False

    @staticmethod
    def _build_graph(txns: list[Txn]) -> dict[int, set[int]]:
        adjacency: dict[int, set[int]] = {t.tid: set() for t in txns}
        writers: dict[object, list[Txn]] = {}
        for txn in txns:
            for key in txn.write_set:
                writers.setdefault(key, []).append(txn)
        for key, key_writers in writers.items():
            ordered = sorted(key_writers, key=lambda t: t.tid)
            for earlier, later in zip(ordered, ordered[1:]):
                adjacency[earlier.tid].add(later.tid)  # ww by TID order
            for txn in txns:
                if txn.reads(key):
                    for writer in key_writers:
                        if writer.tid != txn.tid:
                            adjacency[txn.tid].add(writer.tid)  # rw
        return adjacency

    @staticmethod
    def _topological_order(adjacency: dict[int, set[int]]) -> list[int]:
        """Kahn's algorithm; ties broken by TID (deterministic)."""
        indegree = {node: 0 for node in adjacency}
        for targets in adjacency.values():
            for target in targets:
                indegree[target] += 1
        ready = sorted(node for node, deg in indegree.items() if deg == 0)
        order: list[int] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for target in sorted(adjacency[node]):
                indegree[target] -= 1
                if indegree[target] == 0:
                    ready.append(target)
            ready.sort()
        if len(order) != len(adjacency):  # pragma: no cover - guarded by pruning
            raise AssertionError("graph still cyclic after pruning")
        return order


class FastFabricValidator(DCCExecutor):
    """Signature-only validation: apply the orderer's schedule as-is.

    Inherits FastFabric's (Gorenflo et al.) validator optimization:
    signature verification is parallelized across cores, so only the write
    application remains on the serial path.
    """

    name = "fastfabric"
    parallel_commit = False

    def execute_block(self, block_id: int, txns: list[Txn]) -> BlockExecution:
        overlay = OverlayView(self.engine.store.latest_snapshot(), block_id)
        commit_durations: list[float] = []
        verify_durations: list[float] = []
        for txn in txns:  # already in the orderer's serialization order
            verify_durations.append(self.engine.costs.verify_us)
            if txn.aborted:
                continue
            txn.mark_committed()
            cost = self.engine.costs.op_cpu_us
            for key in txn.updated_keys:
                base, _version = overlay.get(key)
                overlay.put(key, apply_safely(txn.write_set[key], base))
                cost += self.engine.write_cost(key)
                cost += self.engine.wal.append("rwset", (txn.tid, key))
            txn.commit_cost_us = cost
            commit_durations.append(cost)

        tail = self.engine.apply_block(block_id, overlay.ordered_writes())
        tail += self.engine.checkpoint_if_due(block_id)
        return BlockExecution(
            block_id=block_id,
            txns=txns,
            # parallel signature verification (FastFabric's pipeline)
            sim_durations_us=verify_durations,
            commit_durations_us=commit_durations,
            serial_commit=True,
            post_commit_serial_us=tail,
            stats=self.make_stats(block_id, txns),
        )
