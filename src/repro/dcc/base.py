"""Baseline-protocol base types.

Thin re-export of :mod:`repro.execution` so the baselines (and user code)
can import everything DCC-related from one place.
"""

from repro.execution import BlockExecution, DCCExecutor, simulate_transactions

__all__ = ["BlockExecution", "DCCExecutor", "simulate_transactions"]
