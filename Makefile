# Convenience targets wrapping the standing workflows (see ROADMAP.md).
# Everything runs from the repo root with src/ on PYTHONPATH.

PY := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python

.PHONY: test conformance perf-smoke perf perf-parallel compare faults-smoke faults obs-smoke rebalance-smoke

# tier-1 verify: the whole default suite (perf/faults/tpcc markers
# excluded by pytest.ini)
test:
	$(PY) -m pytest -x -q

# full conformance sweep: every scheme x every registered workload,
# unsharded + sharded, including the tpcc-marked extended matrix (the
# explicit -m overrides pytest.ini's deselection)
conformance:
	$(PY) -m pytest tests/test_conformance.py -q -m "not perf and not faults"

# perf harness smoke: runs in seconds, fails on any check or any
# non-gated speedup < 1.0
perf-smoke:
	$(PY) -m repro.bench --perf-smoke --check

# full perf trajectory run + regression gate (commit BENCH_perf.json)
perf:
	$(PY) -m repro.bench --perf --check

# wall-clock parallelism gates (skip with reason on < 4 usable cores)
perf-parallel:
	$(PY) -m pytest -m perf -k "parallel or pipelined" -q

# diff the two newest same-mode perf runs; fails on a speedup collapse
compare:
	$(PY) -m repro.bench --compare

# fault-injection drills, quick and full
faults-smoke:
	$(PY) -m repro.faults --smoke

faults:
	$(PY) -m repro.faults

# observability gate: traced run + export round-trip + digest
# reproducibility + traced fault drill with annotated report
obs-smoke:
	$(PY) -m repro.obs smoke

# adaptive-sharding gate: the migration-fault drills (crash/torn delta
# at the re-key boundary, bit-identical to reference) on the shifting
# hotspot, plus the rebalance differential/replay/fence test file
rebalance-smoke:
	$(PY) -m repro.faults --smoke --workloads adv-skewshift
	$(PY) -m pytest tests/test_rebalance.py -q
