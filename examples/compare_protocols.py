"""Head-to-head: HarmonyBC vs AriaBC vs RBC vs Fabric vs FastFabric#.

A miniature of the paper's Figures 7/8: all five blockchains run the same
Smallbank and YCSB streams; we print throughput, latency, abort rate and
CPU utilization.

Run:  python examples/compare_protocols.py
"""

from repro.chain.sov import SOVBlockchain, SOVConfig
from repro.chain.system import OEBlockchain, OEConfig
from repro.workloads.smallbank import SmallbankWorkload
from repro.workloads.ycsb import YCSBWorkload

BLOCKS = 12


def run(system: str, workload):
    if system in ("fabric", "fastfabric"):
        chain = SOVBlockchain(
            SOVConfig(system=system, block_size=50, num_blocks=BLOCKS), workload
        )
    else:
        chain = OEBlockchain(
            OEConfig(system=system, block_size=25, num_blocks=BLOCKS), workload
        )
    return chain.run()


def main() -> None:
    for make_workload in (SmallbankWorkload, YCSBWorkload):
        name = make_workload().name
        print(f"--- {name} (skew 0.6, {BLOCKS} blocks) ---")
        print(
            f"{'system':<12} {'tput (txns/s)':>14} {'latency (ms)':>13} "
            f"{'abort rate':>11} {'CPU util':>9}"
        )
        for system in ("fabric", "fastfabric", "rbc", "aria", "harmony"):
            metrics = run(system, make_workload())
            print(
                f"{system:<12} {metrics.throughput_tps:>14,.0f} "
                f"{metrics.mean_latency_ms:>13.1f} {metrics.abort_rate:>11.3f} "
                f"{metrics.cpu_utilization:>9.2f}"
            )
        print()
    print(
        "HarmonyBC leads on throughput and latency: abort-minimizing\n"
        "validation + update reordering/coalescence + inter-block parallelism."
    )


if __name__ == "__main__":
    main()
