"""SQL smart contracts and hotspot resiliency (the Section 3.3 mechanism).

A banking contract written two ways:

- fused:      UPDATE bank SET balance = balance + ?  -> an *add command*;
  Harmony reorders and coalesces concurrent updates: zero aborts, one
  physical write for the whole block, even when every transaction hits the
  same hot account.
- separated:  SELECT then UPDATE ... SET balance = ?  -> a snapshot read
  plus a value write; concurrent updaters form backward dangerous
  structures and all but one abort.

Run:  python examples/sql_smart_contracts.py
"""

from repro.core.harmony import HarmonyConfig, HarmonyExecutor
from repro.sql import Catalog, SQLExecutor
from repro.storage.engine import StorageEngine
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import Txn, TxnSpec
from repro.workloads.base import params

HOT_ACCOUNT = 0
NUM_CLIENTS = 20


def build_bank():
    catalog = Catalog()
    catalog.create_table("bank", key_columns=["id"], value_columns=["balance"])
    engine = StorageEngine()
    engine.preload(
        catalog.initial_rows("bank", [{"id": i, "balance": 1000.0} for i in range(50)])
    )
    return catalog, engine


def run_contract(proc_name: str):
    catalog, engine = build_bank()
    sql = SQLExecutor(catalog)
    registry = ProcedureRegistry()

    @registry.register("deposit_fused")
    def deposit_fused(ctx, account, amount):
        return sql.execute(
            ctx, "UPDATE bank SET balance = balance + ? WHERE id = ?", (amount, account)
        )

    @registry.register("deposit_separated")
    def deposit_separated(ctx, account, amount):
        rows = sql.execute(ctx, "SELECT balance FROM bank WHERE id = ?", (account,))
        if not rows:
            return 0
        new_balance = rows[0]["balance"] + amount
        return sql.execute(
            ctx, "UPDATE bank SET balance = ? WHERE id = ?", (new_balance, account)
        )

    executor = HarmonyExecutor(engine, registry, HarmonyConfig(inter_block=False))
    txns = [
        Txn(i, 0, TxnSpec(proc_name, params(account=HOT_ACCOUNT, amount=10.0)))
        for i in range(NUM_CLIENTS)
    ]
    execution = executor.execute_block(0, txns)

    committed = sum(1 for t in txns if t.committed)
    balance, _ = engine.store.get_latest(("bank", HOT_ACCOUNT))
    applies = [ka for ka in execution.key_applies if ka.key == ("bank", HOT_ACCOUNT)]
    physical_writes = len(applies[0].chain_durations_us) if applies else 0
    print(f"{proc_name}:")
    print(f"  committed {committed}/{NUM_CLIENTS}, aborted {NUM_CLIENTS - committed}")
    print(f"  hot-account balance: {balance['balance']}")
    print(f"  physical updates on the hot key: {physical_writes} (coalescence)")
    print()


def main() -> None:
    print(f"{NUM_CLIENTS} concurrent deposits to one hot account, one block:\n")
    run_contract("deposit_fused")
    run_contract("deposit_separated")
    print(
        "Moral (Section 3.3.2): express read-modify-write logic as one SQL\n"
        "statement; splitting it into SELECT + UPDATE forfeits reordering\n"
        "and coalescence."
    )


if __name__ == "__main__":
    main()
