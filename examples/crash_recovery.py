"""Crash recovery by deterministic replay (Section 4, Recovery).

A HarmonyBC replica processes blocks with checkpoints every 4 blocks, then
"crashes". Recovery loads the latest checkpoint (falling back to the
previous one if the newest is torn) and re-executes the logged input
blocks — logical logging only, no ARIES redo/undo — converging to exactly
the pre-crash state, even with inter-block parallelism enabled.

Run:  python examples/crash_recovery.py
"""

from repro.chain.node import ReplicaNode
from repro.chain.ordering import OrderingService
from repro.chain.recovery import recover_node
from repro.core.harmony import HarmonyConfig, HarmonyExecutor
from repro.storage.engine import StorageEngine
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import TxnSpec
from repro.workloads.base import params


def build_replica() -> ReplicaNode:
    registry = ProcedureRegistry()

    @registry.register("transfer")
    def transfer(ctx, src, dst, amount):
        balance = ctx.read(("acct", src))
        if balance is None or balance < amount:
            return "rejected"
        ctx.add(("acct", src), -amount)
        ctx.add(("acct", dst), amount)
        return "ok"

    engine = StorageEngine(checkpoint_interval=4)
    engine.preload({("acct", i): 500.0 for i in range(8)})
    executor = HarmonyExecutor(engine, registry, HarmonyConfig(inter_block=True))
    return ReplicaNode("replica-0", executor, None)


def main() -> None:
    replica = build_replica()
    ordering = OrderingService()

    for i in range(11):
        block = ordering.form_block(
            [
                TxnSpec("transfer", params(src=i % 8, dst=(i + 3) % 8, amount=25.0)),
                TxnSpec("transfer", params(src=(i + 1) % 8, dst=(i + 5) % 8, amount=10.0)),
            ]
        )
        replica.process_block(block)

    checkpoint = replica.engine.checkpoints.latest()
    print(f"processed {replica.ledger.height} blocks")
    print(f"latest checkpoint at block {checkpoint.block_id}")
    print(f"state hash before crash: {replica.state_hash()[:16]}...")

    print("\n-- crash! recovering from checkpoint + block log --")
    recovered = recover_node(replica)
    print(f"recovered state hash:    {recovered.state_hash()[:16]}...")
    assert recovered.state_hash() == replica.state_hash()
    print("states identical: recovery is deterministic replay")

    print("\n-- crash during checkpointing: newest checkpoint torn --")
    replica.engine.checkpoints.torn_latest = True
    recovered2 = recover_node(replica)
    assert recovered2.state_hash() == replica.state_hash()
    print("recovered from the previous checkpoint; states still identical")

    next_block = ordering.form_block(
        [TxnSpec("transfer", params(src=0, dst=1, amount=5.0))]
    )
    replica.engine.checkpoints.torn_latest = False
    replica.process_block(next_block)
    recovered.process_block(next_block)
    assert recovered.state_hash() == replica.state_hash()
    print("recovered replica keeps processing new blocks in lockstep")


if __name__ == "__main__":
    main()
