"""Quickstart: build a tiny HarmonyBC, submit transactions, verify the chain.

Run:  python examples/quickstart.py
"""

from repro.chain.node import ReplicaNode
from repro.chain.ordering import OrderingService
from repro.consensus.crypto import Signer
from repro.core.harmony import HarmonyConfig, HarmonyExecutor
from repro.storage.engine import StorageEngine
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import TxnSpec
from repro.workloads.base import params


def main() -> None:
    # 1. Smart contracts are plain Python stored procedures: arbitrary
    #    control flow, no static analysis anywhere.
    registry = ProcedureRegistry()

    @registry.register("open_account")
    def open_account(ctx, owner, deposit):
        ctx.insert(("acct", owner), float(deposit))
        return "opened"

    @registry.register("pay")
    def pay(ctx, src, dst, amount):
        balance = ctx.read(("acct", src))
        if balance is None or balance < amount:
            return "rejected"
        # arithmetic updates are recorded as *commands* (add), which Harmony
        # reorders and coalesces instead of aborting on write conflicts
        ctx.add(("acct", src), -amount)
        ctx.add(("acct", dst), amount)
        return "ok"

    # 2. A replica = disk-oriented storage engine + the Harmony executor.
    engine = StorageEngine()
    engine.preload({("acct", name): 100.0 for name in ("alice", "bob", "carol")})
    executor = HarmonyExecutor(engine, registry, HarmonyConfig())
    orderer_signer = Signer("ordering-service")
    replica = ReplicaNode("replica-0", executor, orderer_signer)

    # 3. The ordering service cuts signed, hash-chained blocks.
    ordering = OrderingService(orderer_signer)
    blocks = [
        ordering.form_block(
            [
                TxnSpec("pay", params(src="alice", dst="bob", amount=30.0)),
                TxnSpec("pay", params(src="bob", dst="carol", amount=10.0)),
                TxnSpec("pay", params(src="carol", dst="alice", amount=5.0)),
            ]
        ),
        ordering.form_block(
            [
                TxnSpec("open_account", params(owner="dave", deposit=42.0)),
                TxnSpec("pay", params(src="alice", dst="dave", amount=1.0)),
            ]
        ),
    ]

    for block in blocks:
        execution = replica.process_block(block)
        committed = [t.tid for t in execution.txns if t.committed]
        print(f"block {block.block_id}: committed txns {committed}")

    # 4. Inspect state, chain integrity and replica consistency.
    for name in ("alice", "bob", "carol", "dave"):
        value, _version = engine.store.get_latest(("acct", name))
        print(f"  acct/{name}: {value}")
    print("ledger verifies:", replica.ledger.verify_chain())
    print("state hash:", replica.state_hash()[:16], "...")

    # 5. Determinism: an independent replica fed the same chain agrees.
    engine2 = StorageEngine()
    engine2.preload({("acct", name): 100.0 for name in ("alice", "bob", "carol")})
    replica2 = ReplicaNode(
        "replica-1", HarmonyExecutor(engine2, registry, HarmonyConfig()), orderer_signer
    )
    for block in replica.ledger.blocks():
        replica2.process_block(block)
    print("replicas consistent:", replica2.state_hash() == replica.state_hash())


if __name__ == "__main__":
    main()
